package rtl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/scalarrepl"
	"repro/internal/sched"
)

func buildFor(t *testing.T, name string, alg core.Allocator) (*ir.Nest, *scalarrepl.Plan, *FSMD) {
	t.Helper()
	k, err := kernels.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prob, err := core.NewProblem(k.Nest, k.Rmax, dfg.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := alg.Allocate(prob)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := scalarrepl.NewPlan(k.Nest, prob.Infos, alloc.Beta)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Build(k.Nest, plan, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k.Nest, plan, f
}

// TestFSMDClassesMatchScheduler: the FSMD has one control sequence per
// iteration class with the same state counts the scheduler predicts.
func TestFSMDClassesMatchScheduler(t *testing.T) {
	nest, plan, f := buildFor(t, "figure1", core.CPARA{})
	res, err := sched.Simulate(nest, plan, sched.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Classes) != len(res.Classes) {
		t.Fatalf("FSMD has %d classes, scheduler %d", len(f.Classes), len(res.Classes))
	}
	for _, cs := range res.Classes {
		cf := f.Classes[cs.Signature]
		if cf == nil {
			t.Fatalf("missing FSM for class %s", cs.Signature)
		}
		if cf.States != cs.IterCycles {
			t.Errorf("class %s: FSM %d states, scheduler %d cycles", cs.Signature, cf.States, cs.IterCycles)
		}
	}
}

// TestFSMDExecutionMatchesCyclePrediction: executing the FSMD state by
// state reproduces exactly the analytic loop cycle count.
func TestFSMDExecutionMatchesCyclePrediction(t *testing.T) {
	for _, alg := range []core.Allocator{core.FRRA{}, core.PRRA{}, core.CPARA{}} {
		nest, plan, f := buildFor(t, "figure1", alg)
		res, err := sched.Simulate(nest, plan, sched.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		store := ir.NewStore()
		store.RandomizeInputs(nest, 4)
		stats, err := f.Simulate(store)
		if err != nil {
			t.Fatalf("%T: %v", alg, err)
		}
		if stats.Cycles != res.LoopCycles {
			t.Errorf("%T: executed %d cycles, scheduler predicted %d", alg, stats.Cycles, res.LoopCycles)
		}
		if stats.Iterations != nest.IterationCount() {
			t.Errorf("%T: %d iterations, want %d", alg, stats.Iterations, nest.IterationCount())
		}
	}
}

// TestFSMDSemantics: the cycle-accurate execution produces the reference
// memory image for every allocator on the running example and FIR.
func TestFSMDSemantics(t *testing.T) {
	for _, name := range []string{"figure1", "fir"} {
		for _, alg := range []core.Allocator{core.FRRA{}, core.PRRA{}, core.CPARA{}} {
			nest, _, f := buildFor(t, name, alg)
			golden := ir.NewStore()
			golden.RandomizeInputs(nest, 9)
			hw := golden.Clone()
			if _, err := ir.Interp(nest, golden); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Simulate(hw); err != nil {
				t.Fatalf("%s/%T: %v", name, alg, err)
			}
			if eq, diff := golden.Equal(hw); !eq {
				t.Fatalf("%s/%T: FSMD execution diverged: %s", name, alg, diff)
			}
		}
	}
}

// TestFSMDPortDiscipline: execution never exceeds the configured port
// limit (the simulator would error), and the observed pressure reaches the
// limit on a port-contended kernel.
func TestFSMDPortDiscipline(t *testing.T) {
	nest, _, f := buildFor(t, "figure1", core.FRRA{})
	store := ir.NewStore()
	store.RandomizeInputs(nest, 2)
	stats, err := f.Simulate(store)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxPortUse > 1 {
		t.Errorf("single-ported config observed %d-wide access", stats.MaxPortUse)
	}
}

// TestFSMDStateTable: the rendered state table shows RAM reads, register
// accesses, ALU evaluations and RAM writes in schedule order.
func TestFSMDStateTable(t *testing.T) {
	_, _, f := buildFor(t, "figure1", core.CPARA{})
	s := f.String()
	for _, frag := range []string{"class", "states", "ram_rd(c[j])", "alu(*)", "ram_wr(e[i][j][k])", "reg(d[i][k])"} {
		if !strings.Contains(s, frag) {
			t.Errorf("state table missing %q:\n%s", frag, s)
		}
	}
}

// TestFSMDLiteralOperands: kernels whose expressions contain literals and
// loop-variable operands (IMI's (t*(b-a))>>4) must execute correctly —
// exercising dfg.Arg immediates.
func TestFSMDLiteralOperands(t *testing.T) {
	nest, _, f := buildFor(t, "imi", core.CPARA{})
	golden := ir.NewStore()
	golden.RandomizeInputs(nest, 6)
	hw := golden.Clone()
	if _, err := ir.Interp(nest, golden); err != nil {
		t.Fatal(err)
	}
	stats, err := f.Simulate(hw)
	if err != nil {
		t.Fatal(err)
	}
	if eq, diff := golden.Equal(hw); !eq {
		t.Fatalf("IMI FSMD diverged: %s", diff)
	}
	if stats.Cycles == 0 || stats.RAMWrites == 0 {
		t.Errorf("degenerate stats: %+v", stats)
	}
}
