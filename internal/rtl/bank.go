package rtl

import (
	"repro/internal/ir"
	"repro/internal/scalarrepl"
)

// bank is one reference's register bank, direct-mapped by the entry's slot
// function — rotating (flat index modulo bank size) when the covered window
// is collision-free under that addressing, so sliding windows reuse like an
// associative file, and window-ordinal addressed otherwise. The generated
// code and the VHDL emitter use the same organization.
type bank struct {
	entry   *scalarrepl.Entry
	vals    []int64
	present []bool
	dirty   []bool
	elem    []int // absolute flat element cached in each slot
	mask    int64
}

func newBanks(plan *scalarrepl.Plan) map[string]*bank {
	banks := map[string]*bank{}
	for _, e := range plan.Order() {
		if e.Coverage == 0 {
			continue
		}
		bits := e.Info.Group.Ref.Array.ElemBits
		var mask int64 = -1
		if bits < 64 {
			mask = (int64(1) << uint(bits)) - 1
		}
		banks[e.Info.Key()] = &bank{
			entry:   e,
			vals:    make([]int64, e.Coverage),
			present: make([]bool, e.Coverage),
			dirty:   make([]bool, e.Coverage),
			elem:    make([]int, e.Coverage),
			mask:    mask,
		}
	}
	return banks
}

// read serves a covered access; if the slot caches a different element
// (the window slid), it spills a dirty occupant and refills from RAM.
func (bk *bank) read(store *ir.Store, env map[string]int) (v int64, ramReads int, err error) {
	o := bk.entry.SlotOf(env)
	flat := bk.entry.FlatAffine().Eval(env)
	arr := bk.entry.Info.Group.Ref.Array
	if bk.present[o] && bk.elem[o] == flat {
		return bk.vals[o], 0, nil
	}
	if bk.present[o] && bk.dirty[o] {
		if err := storeFlat(store, arr, bk.elem[o], bk.vals[o]); err != nil {
			return 0, 0, err
		}
	}
	v, err = loadFlat(store, arr, flat)
	if err != nil {
		return 0, 0, err
	}
	bk.vals[o], bk.present[o], bk.dirty[o], bk.elem[o] = v, true, false, flat
	return v, 1, nil
}

// write stores into the covered slot, spilling a dirty different occupant.
func (bk *bank) write(store *ir.Store, env map[string]int, v int64) (ramWrites int, err error) {
	o := bk.entry.SlotOf(env)
	flat := bk.entry.FlatAffine().Eval(env)
	arr := bk.entry.Info.Group.Ref.Array
	spills := 0
	if bk.present[o] && bk.elem[o] != flat && bk.dirty[o] {
		if err := storeFlat(store, arr, bk.elem[o], bk.vals[o]); err != nil {
			return 0, err
		}
		spills++
	}
	bk.vals[o], bk.present[o], bk.dirty[o], bk.elem[o] = v&bk.mask, true, true, flat
	return spills, nil
}

// flush drains every dirty slot back to RAM.
func (bk *bank) flush(store *ir.Store) (ramWrites int, err error) {
	arr := bk.entry.Info.Group.Ref.Array
	for o := range bk.vals {
		if bk.present[o] && bk.dirty[o] {
			if err := storeFlat(store, arr, bk.elem[o], bk.vals[o]); err != nil {
				return ramWrites, err
			}
			ramWrites++
		}
		bk.present[o], bk.dirty[o] = false, false
	}
	return ramWrites, nil
}

func storeFlat(s *ir.Store, arr *ir.Array, flat int, v int64) error {
	idx := make([]int, len(arr.Dims))
	for d := len(arr.Dims) - 1; d >= 0; d-- {
		idx[d] = flat % arr.Dims[d]
		flat /= arr.Dims[d]
	}
	return s.StoreElem(arr, idx, v)
}

func loadFlat(s *ir.Store, arr *ir.Array, flat int) (int64, error) {
	idx := make([]int, len(arr.Dims))
	for d := len(arr.Dims) - 1; d >= 0; d-- {
		idx[d] = flat % arr.Dims[d]
		flat /= arr.Dims[d]
	}
	return s.Load(arr, idx)
}
