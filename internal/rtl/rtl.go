// Package rtl lowers a scheduled storage plan to an explicit FSMD — the
// finite-state-machine-with-datapath structure a behavioral synthesis tool
// (the paper used Mentor Monet) would emit. Each steady-state iteration
// class becomes a control sequence of states; each state issues the RAM
// transactions and operator evaluations the ASAP schedule placed in that
// cycle.
//
// The package also contains a cycle-accurate simulator that executes the
// FSMD with real values — register banks, RAM ports, operator results per
// state — asserting that (a) RAM port limits are honored in every cycle,
// (b) the executed cycle count equals the analytic scheduler's prediction,
// and (c) the final memory image matches the reference interpreter. This
// closes the loop between the allocation model and an implementable
// control structure.
package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/ir"
	"repro/internal/scalarrepl"
	"repro/internal/sched"
)

// ClassFSM is the control sequence of one iteration class.
type ClassFSM struct {
	Signature string
	States    int
	// IssueAt[cycle] lists the DFG node ids whose execution starts at that
	// cycle (RAM transactions occupy [start, start+Mem); operators deliver
	// their result at start+latency).
	IssueAt map[int][]int
	// Hit reports per reference key whether this class serves it from
	// registers.
	Hit map[string]bool
}

// FSMD is the full design: the shared datapath graph plus one control
// sequence per iteration class.
type FSMD struct {
	Nest    *ir.Nest
	Plan    *scalarrepl.Plan
	Graph   *dfg.Graph
	Cfg     sched.Config
	Classes map[string]*ClassFSM
}

// Build constructs the FSMD for every iteration class the plan induces.
func Build(nest *ir.Nest, plan *scalarrepl.Plan, cfg sched.Config) (*FSMD, error) {
	g, err := dfg.Build(nest)
	if err != nil {
		return nil, err
	}
	f := &FSMD{Nest: nest, Plan: plan, Graph: g, Cfg: cfg, Classes: map[string]*ClassFSM{}}
	// Discover the classes by walking the iteration space once.
	env := map[string]int{}
	var walk func(depth int) error
	walk = func(depth int) error {
		if depth == nest.Depth() {
			sig := plan.HitKeys(env)
			if _, ok := f.Classes[sig]; !ok {
				cf, err := f.buildClass(sig)
				if err != nil {
					return err
				}
				f.Classes[sig] = cf
			}
			return nil
		}
		l := nest.Loops[depth]
		for v := l.Lo; v < l.Hi; v += l.Step {
			env[l.Var] = v
			if err := walk(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *FSMD) buildClass(sig string) (*ClassFSM, error) {
	hit := map[string]bool{}
	for i, e := range f.Plan.Order() {
		hit[e.Info.Key()] = sig[i] == '1'
	}
	sc, err := sched.ScheduleClass(f.Graph, hit, f.Cfg, false)
	if err != nil {
		return nil, err
	}
	cf := &ClassFSM{Signature: sig, States: sc.Length, IssueAt: map[int][]int{}, Hit: hit}
	if cf.States < 1 {
		cf.States = 1
	}
	for id := range f.Graph.Nodes {
		cf.IssueAt[sc.Start[id]] = append(cf.IssueAt[sc.Start[id]], id)
	}
	for _, ids := range cf.IssueAt {
		sort.Ints(ids)
	}
	return cf, nil
}

// String renders the FSMD as a state table for inspection and golden tests.
func (f *FSMD) String() string {
	var b strings.Builder
	var sigs []string
	for s := range f.Classes {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		cf := f.Classes[sig]
		fmt.Fprintf(&b, "class %s: %d states\n", sig, cf.States)
		for cyc := 0; cyc <= cf.States; cyc++ {
			ids := cf.IssueAt[cyc]
			if len(ids) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  S%d:", cyc)
			for _, id := range ids {
				n := f.Graph.Nodes[id]
				switch {
				case n.Kind == dfg.KindRef && cf.Hit[n.RefKey]:
					fmt.Fprintf(&b, " reg(%s)", n.RefKey)
				case n.Kind == dfg.KindRef && n.IsWrite:
					fmt.Fprintf(&b, " ram_wr(%s)", n.RefKey)
				case n.Kind == dfg.KindRef:
					fmt.Fprintf(&b, " ram_rd(%s)", n.RefKey)
				default:
					fmt.Fprintf(&b, " alu(%s)", n.Op)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// SimStats is the outcome of a cycle-accurate FSMD execution.
type SimStats struct {
	Cycles      int // total states executed across all iterations
	RAMReads    int
	RAMWrites   int
	MaxPortUse  int // worst per-array, per-cycle port pressure observed
	Iterations  int
	ClassCounts map[string]int
}

// Simulate executes the FSMD cycle by cycle with real values against the
// store. It returns an error on any port-limit violation or semantic
// failure (reading a value before its producing state).
func (f *FSMD) Simulate(store *ir.Store) (*SimStats, error) {
	for _, a := range f.Nest.Arrays() {
		if !store.Bound(a.Name) {
			store.Bind(a)
		}
	}
	stats := &SimStats{ClassCounts: map[string]int{}}
	banks := newBanks(f.Plan)
	lastRegion := map[string]int{}
	for key := range banks {
		lastRegion[key] = -1
	}
	env := map[string]int{}
	val := make([]int64, len(f.Graph.Nodes))
	done := make([]int, len(f.Graph.Nodes)) // finish cycle of each node this iteration

	evalArg := func(a dfg.Arg, cycle int) (int64, error) {
		switch {
		case a.Lit != nil:
			return *a.Lit, nil
		case a.Var != "":
			return int64(env[a.Var]), nil
		default:
			if done[a.NodeID] > cycle {
				return 0, fmt.Errorf("rtl: node %d consumed at cycle %d before ready at %d",
					a.NodeID, cycle, done[a.NodeID])
			}
			return val[a.NodeID], nil
		}
	}

	runIteration := func() error {
		// Region flushes between iterations (transfer states outside the
		// steady FSM, like the paper's peeled sections).
		for key, bk := range banks {
			r := bk.entry.RegionOf(f.Nest, env)
			if lastRegion[key] != r {
				if lastRegion[key] >= 0 {
					w, err := bk.flush(store)
					if err != nil {
						return err
					}
					stats.RAMWrites += w
				}
				lastRegion[key] = r
			}
		}
		sig := f.Plan.HitKeys(env)
		cf := f.Classes[sig]
		if cf == nil {
			return fmt.Errorf("rtl: iteration fell into unknown class %s", sig)
		}
		stats.ClassCounts[sig]++
		lat := func(n *dfg.Node) int {
			if n.Kind == dfg.KindRef {
				if cf.Hit[n.RefKey] {
					return 0
				}
				return f.Cfg.Lat.Mem
			}
			return f.Cfg.Lat.OpLat(n.Op)
		}
		for cyc := 0; cyc <= cf.States; cyc++ {
			portUse := map[string]int{}
			for _, id := range cf.IssueAt[cyc] {
				n := f.Graph.Nodes[id]
				l := lat(n)
				if n.Kind == dfg.KindRef && !cf.Hit[n.RefKey] && l > 0 {
					portUse[n.Ref.Array.Name]++
					if portUse[n.Ref.Array.Name] > f.Cfg.PortsPerRAM {
						return fmt.Errorf("rtl: port violation on %s at state %d of class %s",
							n.Ref.Array.Name, cyc, sig)
					}
					if portUse[n.Ref.Array.Name] > stats.MaxPortUse {
						stats.MaxPortUse = portUse[n.Ref.Array.Name]
					}
				}
				v, rr, rw, err := f.execNode(n, cf, cyc, env, store, banks, evalArg)
				if err != nil {
					return err
				}
				stats.RAMReads += rr
				stats.RAMWrites += rw
				val[id] = v
				done[id] = cyc + l
			}
		}
		stats.Cycles += maxInt(cf.States, 1)
		stats.Iterations++
		return nil
	}
	var walk func(depth int) error
	walk = func(depth int) error {
		if depth == f.Nest.Depth() {
			return runIteration()
		}
		l := f.Nest.Loops[depth]
		for v := l.Lo; v < l.Hi; v += l.Step {
			env[l.Var] = v
			if err := walk(depth + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	var keys []string
	for k := range banks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, err := banks[k].flush(store)
		if err != nil {
			return nil, err
		}
		stats.RAMWrites += w
	}
	return stats, nil
}

// execNode executes one datapath node in its scheduled state.
func (f *FSMD) execNode(n *dfg.Node, cf *ClassFSM, cycle int, env map[string]int,
	store *ir.Store, banks map[string]*bank,
	evalArg func(dfg.Arg, int) (int64, error)) (v int64, ramReads, ramWrites int, err error) {
	switch {
	case n.Kind == dfg.KindOp:
		l, err := evalArg(n.Args[0], cycle)
		if err != nil {
			return 0, 0, 0, err
		}
		r, err := evalArg(n.Args[1], cycle)
		if err != nil {
			return 0, 0, 0, err
		}
		v, err := ir.EvalOp(n.Op, l, r)
		return v, 0, 0, err
	case n.IsWrite:
		// A write node stores its producer's value; when also read later
		// (forwarding node, e.g. d[i][k]) its value feeds consumers.
		v, err := evalArg(n.Args[0], cycle)
		if err != nil {
			return 0, 0, 0, err
		}
		bk := banks[n.RefKey]
		if cf.Hit[n.RefKey] && bk != nil {
			spills, err := bk.write(store, env, v)
			return v, 0, spills, err
		}
		if err := store.StoreElem(n.Ref.Array, evalIdx(n.Ref, env), v); err != nil {
			return 0, 0, 0, err
		}
		return v, 0, 1, nil
	default: // pure read
		bk := banks[n.RefKey]
		if cf.Hit[n.RefKey] && bk != nil {
			v, loads, err := bk.read(store, env)
			return v, loads, 0, err
		}
		v, err := store.Load(n.Ref.Array, evalIdx(n.Ref, env))
		return v, 1, 0, err
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func evalIdx(r *ir.ArrayRef, env map[string]int) []int {
	idx := make([]int, len(r.Index))
	for d, ix := range r.Index {
		idx[d] = ix.Eval(env)
	}
	return idx
}
