#!/usr/bin/env bash
# bench.sh — run the top-level benchmark suite and write the trajectory
# artifacts: BENCH_<n>.json (benchstat-comparable raw output wrapped with
# run metadata; see scripts/benchjson) and OBS_<n>.json (the per-stage
# metrics snapshot of the stock 192-point sweep, so the trajectory carries
# stage breakdowns, not just top-line ns/op).
#
# Usage:
#   scripts/bench.sh <n> [out-dir]        # run benches, write BENCH_<n>.json + OBS_<n>.json
#   scripts/bench.sh --extract FILE.json  # print raw text for benchstat
#
# Compare two PRs:
#   benchstat <(scripts/bench.sh --extract BENCH_3.json) \
#             <(scripts/bench.sh --extract BENCH_4.json)
#
# Environment overrides:
#   BENCH_REGEX  benchmarks to run   (default: the DSE hot-path suite)
#   BENCH_COUNT  -count              (default: 3)
#   BENCH_TIME   -benchtime          (default: 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--extract" ]; then
  [ $# -eq 2 ] || { echo "usage: scripts/bench.sh --extract FILE.json" >&2; exit 2; }
  exec go run ./scripts/benchjson extract < "$2"
fi

n="${1:?usage: scripts/bench.sh <n> [out-dir]  (or --extract FILE.json)}"
outdir="${2:-.}"
regex="${BENCH_REGEX:-BenchmarkAnalyze\$|BenchmarkSimulate\$|BenchmarkExplore\$|BenchmarkIncrementalSim|BenchmarkStreamReport}"
count="${BENCH_COUNT:-3}"
btime="${BENCH_TIME:-1x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench "$regex" -benchtime "$btime" -count "$count" . | tee "$raw" >&2
go run ./scripts/benchjson wrap -pr "$n" -bench "$regex" -count "$count" -benchtime "$btime" \
  < "$raw" > "$outdir/BENCH_$n.json"
echo "wrote $outdir/BENCH_$n.json" >&2

go run ./cmd/dse -quiet -metrics "$outdir/OBS_$n.json" > /dev/null
echo "wrote $outdir/OBS_$n.json" >&2
