// Command benchjson converts between raw `go test -bench` output and the
// repository's benchmark trajectory artifacts (BENCH_<n>.json): `wrap`
// embeds the raw text with run metadata into one JSON document, `extract`
// prints the raw text back out — so two artifacts compare with
//
//	benchstat <(benchjson extract < BENCH_3.json) <(benchjson extract < BENCH_4.json)
//
// (or via scripts/bench.sh --extract). JSON is used for the committed
// artifact so metadata travels with the numbers; the embedded text is the
// untouched benchmark output, which is what benchstat consumes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
)

type artifact struct {
	PR        string `json:"pr"`
	GoVersion string `json:"goversion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Bench     string `json:"bench"`
	Count     int    `json:"count"`
	Benchtime string `json:"benchtime"`
	// Output is the verbatim `go test -bench` text (benchstat input).
	Output string `json:"output"`
}

func main() {
	if len(os.Args) < 2 {
		die("usage: benchjson wrap|extract [flags]")
	}
	switch os.Args[1] {
	case "wrap":
		fs := flag.NewFlagSet("wrap", flag.ExitOnError)
		pr := fs.String("pr", "", "PR number or label for the artifact")
		bench := fs.String("bench", "", "benchmark regex that produced the output")
		count := fs.Int("count", 1, "-count used")
		benchtime := fs.String("benchtime", "", "-benchtime used")
		fs.Parse(os.Args[2:])
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			die(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(artifact{
			PR:        *pr,
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			Bench:     *bench,
			Count:     *count,
			Benchtime: *benchtime,
			Output:    string(raw),
		}); err != nil {
			die(err)
		}
	case "extract":
		var a artifact
		if err := json.NewDecoder(os.Stdin).Decode(&a); err != nil {
			die(err)
		}
		fmt.Print(a.Output)
	default:
		die(fmt.Sprintf("unknown subcommand %q (want wrap or extract)", os.Args[1]))
	}
}

func die(v any) {
	fmt.Fprintln(os.Stderr, "benchjson:", v)
	os.Exit(1)
}
