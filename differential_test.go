package repro

// Differential fuzzing across the verification tower: for randomly
// generated loop nests, random register budgets and every allocator, the
// four executors — reference interpreter, associative functional
// simulation, generated code, and cycle-accurate FSMD — must all produce
// the same memory image, and the FSMD's executed cycle count must equal
// the analytic scheduler's prediction.

import (
	"math/rand"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/rtl"
	"repro/internal/scalarrepl"
	"repro/internal/sched"
)

func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 20
	}
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < trials; trial++ {
		nest := irgen.Nest(rng, irgen.Config{})
		nRefs := len(nest.RefGroups())
		rmax := nRefs + rng.Intn(48)
		prob, err := core.NewProblem(nest, rmax, dfg.DefaultLatencies())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, nest)
		}
		for _, alg := range core.All() {
			alloc, err := alg.Allocate(prob)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, alg.Name(), err, nest)
			}
			if err := alloc.Validate(prob); err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, nest)
			}
			plan, err := scalarrepl.NewPlan(nest, prob.Infos, alloc.Beta)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", trial, alg.Name(), err, nest)
			}
			checkTower(t, trial, alg.Name(), nest, plan, int64(trial))
		}
	}
}

// checkTower runs all four executors on one (nest, plan) and cross-checks.
func checkTower(t *testing.T, trial int, alg string, nest *ir.Nest, plan *scalarrepl.Plan, seed int64) {
	t.Helper()
	golden := ir.NewStore()
	golden.RandomizeInputs(nest, seed)
	inputs := golden.Clone()
	if _, err := ir.Interp(nest, golden); err != nil {
		t.Fatalf("trial %d %s: interpreter: %v\n%s", trial, alg, err, nest)
	}

	// 2. Associative functional simulation.
	fsim := inputs.Clone()
	if _, err := sched.RunFuncSim(nest, plan, fsim); err != nil {
		t.Fatalf("trial %d %s: funcsim: %v\n%s", trial, alg, err, nest)
	}
	if eq, diff := golden.Equal(fsim); !eq {
		t.Fatalf("trial %d %s: funcsim diverged: %s\n%s", trial, alg, diff, nest)
	}

	// 3. Generated code with direct-mapped banks.
	prog, err := codegen.Generate(nest, plan)
	if err != nil {
		t.Fatalf("trial %d %s: codegen: %v\n%s", trial, alg, err, nest)
	}
	gen := inputs.Clone()
	if _, err := prog.Run(gen); err != nil {
		t.Fatalf("trial %d %s: generated code: %v\n%s", trial, alg, err, nest)
	}
	if eq, diff := golden.Equal(gen); !eq {
		t.Fatalf("trial %d %s: generated code diverged: %s\n%s\n%s", trial, alg, diff, nest, prog)
	}

	// 4. Cycle-accurate FSMD, cross-checked against the analytic cycles.
	cfg := sched.DefaultConfig()
	res, err := sched.Simulate(nest, plan, cfg)
	if err != nil {
		t.Fatalf("trial %d %s: scheduler: %v\n%s", trial, alg, err, nest)
	}
	fsmd, err := rtl.Build(nest, plan, cfg)
	if err != nil {
		t.Fatalf("trial %d %s: rtl: %v\n%s", trial, alg, err, nest)
	}
	hw := inputs.Clone()
	stats, err := fsmd.Simulate(hw)
	if err != nil {
		t.Fatalf("trial %d %s: fsmd: %v\n%s", trial, alg, err, nest)
	}
	if eq, diff := golden.Equal(hw); !eq {
		t.Fatalf("trial %d %s: FSMD diverged: %s\n%s", trial, alg, diff, nest)
	}
	if stats.Cycles != res.LoopCycles {
		t.Fatalf("trial %d %s: FSMD executed %d cycles, scheduler predicted %d\n%s",
			trial, alg, stats.Cycles, res.LoopCycles, nest)
	}
}

// TestDifferentialRandomBetas drives the tower with arbitrary feasible β
// vectors (not just allocator outputs), probing plan/executor corners the
// algorithms never produce.
func TestDifferentialRandomBetas(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < trials; trial++ {
		nest := irgen.Nest(rng, irgen.Config{})
		prob, err := core.NewProblem(nest, 1<<20, dfg.DefaultLatencies())
		if err != nil {
			t.Fatal(err)
		}
		beta := map[string]int{}
		for _, inf := range prob.Infos {
			beta[inf.Key()] = 1 + rng.Intn(inf.Nu)
		}
		plan, err := scalarrepl.NewPlan(nest, prob.Infos, beta)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, nest)
		}
		checkTower(t, trial, "random-β", nest, plan, int64(trial))
	}
}
